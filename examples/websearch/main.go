// Websearch builds a sorted string index over web-crawl-like text lines
// (the paper's COMMONCRAWL scenario) and serves prefix queries from it —
// the "sorted arrays of strings that facilitate fast binary search" and
// prefix-B-tree use cases of Section I. The index keeps the LCP arrays the
// sorter emits: with them a pattern s is found in O(|s| + log n), and
// counting is two binary searches.
//
// Run with: go run ./examples/websearch
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"dss/internal/input"
	"dss/stringsort"
)

// index is one PE's shard of the sorted line index.
type index struct {
	lines [][]byte
	lcps  []int32
}

// countPrefix counts lines starting with the pattern via binary search.
func (ix *index) countPrefix(pat []byte) int {
	lo := sort.Search(len(ix.lines), func(i int) bool {
		return bytes.Compare(ix.lines[i], pat) >= 0
	})
	hi := sort.Search(len(ix.lines), func(i int) bool {
		if bytes.Compare(ix.lines[i], pat) < 0 {
			return false
		}
		return !bytes.HasPrefix(ix.lines[i], pat)
	})
	return hi - lo
}

func main() {
	const p = 4
	const linesPerPE = 5000

	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.CommonCrawlLike(input.CCConfig{
			LinesPerPE: linesPerPE,
			Seed:       7,
		}, pe, p)
	}

	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm: stringsort.MS, // LCP output for free
		Validate:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build the sharded index. Shard boundaries are exactly the PE
	// fragments; a router only needs the first line of each shard.
	shards := make([]*index, 0, p)
	var routers [][]byte
	for _, frag := range res.PEs {
		if len(frag.Strings) == 0 {
			continue
		}
		shards = append(shards, &index{lines: frag.Strings, lcps: frag.LCPs})
		routers = append(routers, frag.Strings[0])
	}

	total := 0
	for _, sh := range shards {
		total += len(sh.lines)
	}
	fmt.Printf("indexed %d lines in %d shards (%.1f bytes/line sent during sort)\n",
		total, len(shards), res.Stats.BytesPerString)

	// Exact-duplicate statistics straight from the LCP arrays: a line is a
	// duplicate iff its LCP equals both its own and its predecessor's length.
	dups := 0
	for _, sh := range shards {
		for i := 1; i < len(sh.lines); i++ {
			if int(sh.lcps[i]) == len(sh.lines[i]) && len(sh.lines[i]) == len(sh.lines[i-1]) {
				dups++
			}
		}
	}
	fmt.Printf("duplicate lines detected via LCP scan: %d (%.1f%%)\n",
		dups, 100*float64(dups)/float64(total))

	// Serve a few prefix queries: route to the shard(s) by the router
	// keys, then binary search inside.
	patterns := [][]byte{[]byte("a"), []byte("th"), []byte("!"), []byte("zzz")}
	for _, pat := range patterns {
		count := 0
		for si, sh := range shards {
			// Shard si can contain the prefix range iff pat < first line of
			// shard si+1 and pat+ffff... >= routers[si]; simplest correct
			// routing: query every shard whose range can intersect.
			if si+1 < len(routers) && bytes.Compare(routers[si+1], pat) < 0 &&
				!bytes.HasPrefix(routers[si+1], pat) {
				continue
			}
			count += sh.countPrefix(pat)
		}
		fmt.Printf("prefix %-8q matches %5d lines\n", pat, count)
	}
}
