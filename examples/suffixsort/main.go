// Suffixsort builds a suffix array of a text by sorting all of its
// suffixes with Algorithm PDMS — the application that motivates the paper
// (Section I: the difference cover suffix sorter needs an efficient string
// sorter for medium-length strings, and Section VII-E measures the suffix
// instance as PDMS's best case, D/N ≈ 1e-4).
//
// PDMS only communicates the distinguishing prefixes: for suffixes of one
// text these are the minimal substrings that make each suffix unique, a
// tiny fraction of the quadratic total suffix length. The suffix array is
// recovered from the origins without ever materializing full suffixes.
//
// Run with: go run ./examples/suffixsort
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"dss/stringsort"
)

func main() {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 40) +
		"she sells sea shells by the sea shore. " +
		strings.Repeat("to be or not to be that is the question. ", 40)

	const p = 4
	// Distribute the suffixes round-robin: inputs[pe][j] is the suffix
	// starting at global position j*p+pe.
	inputs := make([][][]byte, p)
	data := []byte(text)
	for i := 0; i < len(data); i++ {
		inputs[i%p] = append(inputs[i%p], data[i:])
	}

	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm: stringsort.PDMS,
		Validate:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The suffix array: origins decode back to text positions.
	var sa []int
	for _, frag := range res.PEs {
		for _, o := range frag.Origins {
			sa = append(sa, o.Index*p+o.PE)
		}
	}

	// Verify against the naive construction.
	ref := make([]int, len(data))
	for i := range ref {
		ref[i] = i
	}
	sort.Slice(ref, func(a, b int) bool {
		return string(data[ref[a]:]) < string(data[ref[b]:])
	})
	for i := range ref {
		if sa[i] != ref[i] {
			log.Fatalf("suffix array mismatch at rank %d: got %d, want %d", i, sa[i], ref[i])
		}
	}

	fmt.Printf("suffix array of %d characters built and verified\n", len(data))
	fmt.Printf("PDMS transmitted %.1f bytes per suffix — the average suffix is %.0f chars\n",
		res.Stats.BytesPerString, float64(len(data))/2)
	fmt.Println("\nfirst ranks:")
	for i := 0; i < 8; i++ {
		end := sa[i] + 30
		if end > len(data) {
			end = len(data)
		}
		fmt.Printf("  sa[%d] = %5d  %q...\n", i, sa[i], text[sa[i]:end])
	}

	// A classic suffix array application: count occurrences of a pattern
	// by binary searching the suffix array.
	for _, pattern := range []string{"the ", "sea ", "question", "zebra"} {
		lo := sort.Search(len(sa), func(i int) bool {
			return string(data[sa[i]:]) >= pattern
		})
		hi := sort.Search(len(sa), func(i int) bool {
			suf := string(data[sa[i]:])
			return suf >= pattern && !strings.HasPrefix(suf, pattern)
		})
		fmt.Printf("pattern %-10q occurs %d times\n", pattern, hi-lo)
	}
}
