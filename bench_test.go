// Package dss_test holds the repository-level benchmarks: one benchmark
// per figure of the paper's evaluation (Section VII) plus the ablations of
// DESIGN.md. Each benchmark runs a complete distributed sort on the
// corresponding workload and reports, alongside ns/op (harness wall time
// on this host), the two metrics the paper plots: the α-β model time in
// milliseconds and the communication volume in bytes per string.
//
// Run with: go test -bench=. -benchmem
package dss_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dss/internal/input"
	"dss/stringsort"
)

const benchSeed = 1

// benchCodec selects the wire codec every benchmark decorates its
// transport with (DSS_BENCH_CODEC=none|flate|lcp, default none). The
// model-ms and bytes/str columns are codec-invariant by construction —
// TestBenchSnapshotModelInvariance pins that against the committed
// snapshot — while wire-bytes/str and compression-x record what the
// selected codec put on the fabric.
var benchCodec = os.Getenv("DSS_BENCH_CODEC")

// benchStreaming selects the streaming Step-4 front-end for every
// benchmark (DSS_BENCH_MERGE=streaming). Like the codec axis, the model
// columns are merge-invariant (pinned by the same snapshot test); the
// overlap-ms column records what the seam actually hid.
var benchStreaming = os.Getenv("DSS_BENCH_MERGE") == "streaming"

// benchCores sets the intra-PE work pool width for every benchmark
// (DSS_BENCH_CORES=N, default 0 = GOMAXPROCS). One more model-invariant
// axis: the cores and speedup-x columns record the pool's measured effect
// on wall clock while model-ms and bytes/str stay pinned by the snapshot
// test at every width.
var benchCores = func() int {
	n, _ := strconv.Atoi(os.Getenv("DSS_BENCH_CORES"))
	return n
}()

// benchMemBudget switches every benchmark to the bounded-memory
// out-of-core pipeline (DSS_BENCH_MEMBUDGET=64k|1m|..., default empty =
// unbounded in-RAM). The fourth model-invariant axis: model-ms and
// bytes/str stay pinned by the snapshot test under a budget too, while
// peak-mem-bytes and spill-bytes record what the budget actually cost.
var benchMemBudget = func() int64 {
	budget, err := stringsort.ParseMemBudget(os.Getenv("DSS_BENCH_MEMBUDGET"))
	if err != nil {
		panic(fmt.Sprintf("DSS_BENCH_MEMBUDGET: %v", err))
	}
	return budget
}()

func runBench(b *testing.B, inputs [][][]byte, cfg stringsort.Config) {
	b.Helper()
	if cfg.Codec == "" {
		cfg.Codec = benchCodec
	}
	if benchStreaming {
		cfg.StreamingMerge = true
	}
	if cfg.Cores == 0 {
		cfg.Cores = benchCores
	}
	if cfg.MemBudget == 0 && benchMemBudget > 0 {
		cfg.MemBudget = benchMemBudget
		cfg.SpillDir = b.TempDir()
	}
	var st stringsort.Stats
	for i := 0; i < b.N; i++ {
		res, err := stringsort.Sort(inputs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		st = res.Stats
		if len(res.PEs) > 0 && res.PEs[0].RunFile != "" {
			// Budget mode: drop this iteration's sorted-run files before the
			// next fills the spill dir again.
			os.RemoveAll(filepath.Dir(res.PEs[0].RunFile))
		}
	}
	b.ReportMetric(st.ModelTime*1e3, "model-ms")
	b.ReportMetric(st.BytesPerString, "bytes/str")
	// The wire-side channel: post-codec bytes per string and the ratio to
	// the raw model volume (both equal the raw figures / 1.0 without a
	// codec; deterministic for a fixed codec).
	b.ReportMetric(st.WireBytesPerString, "wire-bytes/str")
	b.ReportMetric(st.CompressionRatio, "compression-x")
	// Measured, not modeled: wall-clock comm time the split-phase Step-3
	// seam hid under Step-4 decoding (varies run to run, unlike the
	// deterministic metrics above).
	b.ReportMetric(st.OverlapMS, "overlap-ms")
	// The Step-4 merge channel: measured PE-summed CPU milliseconds spent
	// inside the merge phase. merge-cpu-ms exceeding the merge wall time
	// proves the partitioned merge itself ran in parallel (the two are ≈
	// equal on single-CPU hosts or below the par-merge threshold).
	b.ReportMetric(st.MergeCPUMS, "merge-cpu-ms")
	// The intra-PE pool channel: the pool width the run executed with and
	// the measured wall-clock speedups — whole sort and merge phase alone —
	// over the same configuration forced sequential (1.0 at width 1 by
	// definition; ≈1.0 on single-CPU hosts — the harness records GOMAXPROCS
	// alongside). Measured, like overlap-ms.
	overall, mergeUp := benchSpeedup(b, inputs, cfg, st)
	b.ReportMetric(float64(st.Cores), "cores")
	b.ReportMetric(overall, "speedup-x")
	b.ReportMetric(mergeUp, "merge-speedup-x")
	// The out-of-core channel: the bottleneck PE's peak metered live bytes
	// and the machine-wide spill traffic (writes + read-backs). Without a
	// budget, spill-bytes is 0 and peak-mem-bytes records the unbounded
	// footprint. Measured, like overlap-ms.
	b.ReportMetric(float64(st.PeakMemBytes), "peak-mem-bytes")
	b.ReportMetric(float64(st.SpillBytesWritten+st.SpillBytesRead), "spill-bytes")
}

// benchSpeedup measures the intra-PE pool's wall-clock speedup: the same
// sort forced to Cores=1 divided by the benchmarked run's wall time, for
// the whole sort and for the Step-4 merge phase alone (the partitioned
// merge's contribution, isolated). Only meaningful (and only paid for —
// one sequential rerun covers both ratios) when the run used a wider pool.
func benchSpeedup(b *testing.B, inputs [][][]byte, cfg stringsort.Config, st stringsort.Stats) (overall, merge float64) {
	b.Helper()
	overall, merge = 1.0, 1.0
	if st.Cores <= 1 || st.WallMS <= 0 {
		return overall, merge
	}
	seq := cfg
	seq.Cores = 1
	res, err := stringsort.Sort(inputs, seq)
	if err != nil {
		b.Fatal(err)
	}
	if res.Stats.WallMS > 0 {
		overall = res.Stats.WallMS / st.WallMS
	}
	if res.Stats.MergeWallMS > 0 && st.MergeWallMS > 0 {
		merge = res.Stats.MergeWallMS / st.MergeWallMS
	}
	return overall, merge
}

func dnInputs(p, nPerPE, length int, ratio float64) [][][]byte {
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.DN(input.DNConfig{
			StringsPerPE: nPerPE, Length: length, Ratio: ratio, Seed: benchSeed,
		}, pe, p)
	}
	return inputs
}

// BenchmarkFig4 covers the weak-scaling D/N experiment: every algorithm at
// every ratio on a fixed PE count (the harness binary sweeps the PE axis).
func BenchmarkFig4(b *testing.B) {
	const p, nPerPE, length = 8, 1000, 100
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		inputs := dnInputs(p, nPerPE, length, ratio)
		for _, algo := range stringsort.Algorithms {
			b.Run(fmt.Sprintf("DN=%.2f/%v", ratio, algo), func(b *testing.B) {
				runBench(b, inputs, stringsort.Config{Algorithm: algo, Seed: benchSeed})
			})
		}
	}
}

// BenchmarkFig5CommonCrawl covers the COMMONCRAWL-like strong scaling
// experiment at two PE counts.
func BenchmarkFig5CommonCrawl(b *testing.B) {
	const total = 16000
	for _, p := range []int{8, 16} {
		inputs := make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			inputs[pe] = input.CommonCrawlLike(input.CCConfig{
				LinesPerPE: total / p, Seed: benchSeed,
			}, pe, p)
		}
		for _, algo := range stringsort.Algorithms {
			b.Run(fmt.Sprintf("p=%d/%v", p, algo), func(b *testing.B) {
				runBench(b, inputs, stringsort.Config{Algorithm: algo, Seed: benchSeed})
			})
		}
	}
}

// BenchmarkFig5DNA covers the DNAREADS-like strong scaling experiment.
func BenchmarkFig5DNA(b *testing.B) {
	const total = 16000
	for _, p := range []int{8, 16} {
		inputs := make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			inputs[pe] = input.DNAReads(input.DNAConfig{
				ReadsPerPE: total / p, Seed: benchSeed,
			}, pe, p)
		}
		for _, algo := range stringsort.Algorithms {
			b.Run(fmt.Sprintf("p=%d/%v", p, algo), func(b *testing.B) {
				runBench(b, inputs, stringsort.Config{Algorithm: algo, Seed: benchSeed})
			})
		}
	}
}

// BenchmarkSuffixInstance covers the Section VII-E suffix experiment:
// PDMS against the strongest conventional algorithm (MS).
func BenchmarkSuffixInstance(b *testing.B) {
	const textLen = 12000
	const p = 8
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.SuffixInstance(input.SuffixConfig{
			TextLen: textLen, Seed: benchSeed,
		}, pe, p)
	}
	for _, algo := range []stringsort.Algorithm{stringsort.MS, stringsort.PDMS, stringsort.PDMSGolomb} {
		b.Run(algo.String(), func(b *testing.B) {
			runBench(b, inputs, stringsort.Config{Algorithm: algo, Seed: benchSeed})
		})
	}
}

// BenchmarkSkewSampling covers the Section VII-E skew experiment:
// string-based vs character-based sampling for MS on the skewed instance.
func BenchmarkSkewSampling(b *testing.B) {
	const p, nPerPE, length = 8, 800, 80
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.DNSkewed(input.DNConfig{
			StringsPerPE: nPerPE, Length: length, Ratio: 0.5, Seed: benchSeed,
		}, pe, p)
	}
	for _, char := range []bool{false, true} {
		name := "string-sampling"
		if char {
			name = "char-sampling"
		}
		b.Run(name, func(b *testing.B) {
			runBench(b, inputs, stringsort.Config{
				Algorithm: stringsort.MS, Seed: benchSeed, CharSampling: char,
			})
		})
	}
}

// BenchmarkAblationOversampling sweeps the oversampling factor v.
func BenchmarkAblationOversampling(b *testing.B) {
	inputs := dnInputs(8, 1000, 100, 0.5)
	for _, v := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			runBench(b, inputs, stringsort.Config{
				Algorithm: stringsort.MS, Seed: benchSeed, Oversampling: v,
			})
		})
	}
}

// BenchmarkAblationEps sweeps PDMS's prefix growth factor.
func BenchmarkAblationEps(b *testing.B) {
	inputs := dnInputs(8, 1000, 100, 0.25)
	for _, eps := range []float64{0.5, 1, 3} {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			runBench(b, inputs, stringsort.Config{
				Algorithm: stringsort.PDMS, Seed: benchSeed, Eps: eps,
			})
		})
	}
}
