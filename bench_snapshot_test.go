// Snapshot regression: the committed BENCH_<date>.json files record the
// paper-figure metrics PR over PR. The deterministic columns — model_ms
// and bytes_per_str — must not drift unless a PR deliberately changes the
// algorithms' communication behavior, and in particular must be invariant
// under every wire codec: compression happens below the accounting
// boundary, so the paper's numbers cannot move.
package dss_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dss/internal/input"
	"dss/stringsort"
)

// benchSnapshot is the snapshot this tree's figures are pinned against
// (written by scripts/bench.sh at the previous PR).
const benchSnapshot = "BENCH_2026-08-07b.json"

type snapshotFile struct {
	Results []struct {
		Name        string  `json:"name"`
		ModelMS     float64 `json:"model_ms"`
		BytesPerStr float64 `json:"bytes_per_str"`
	} `json:"results"`
}

// benchRound rounds x exactly as the testing package prints benchmark
// metrics (and therefore exactly as the numbers entered the snapshot):
// four significant figures for small values, whole numbers from 1000 up.
func benchRound(x float64) float64 {
	var prec int
	switch y := math.Abs(x); {
	case y == 0 || y >= 999.95:
		prec = 0
	case y >= 99.995:
		prec = 1
	case y >= 9.9995:
		prec = 2
	case y >= 0.99995:
		prec = 3
	case y >= 0.099995:
		prec = 4
	case y >= 0.0099995:
		prec = 5
	case y >= 0.00099995:
		prec = 6
	default:
		prec = 7
	}
	v, _ := strconv.ParseFloat(strconv.FormatFloat(x, 'f', prec, 64), 64)
	return v
}

// snapshotInputs rebuilds the workload of one Fig4/Fig5 benchmark from its
// snapshot name, mirroring the constants in bench_test.go.
func snapshotInputs(name string) (inputs [][][]byte, algo stringsort.Algorithm, err error) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 {
		return nil, 0, fmt.Errorf("unrecognized benchmark name %q", name)
	}
	algo, err = stringsort.ParseAlgorithm(parts[2])
	if err != nil {
		return nil, 0, err
	}
	switch parts[0] {
	case "BenchmarkFig4":
		const p, nPerPE, length = 8, 1000, 100
		ratio, perr := strconv.ParseFloat(strings.TrimPrefix(parts[1], "DN="), 64)
		if perr != nil {
			return nil, 0, perr
		}
		inputs = make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			inputs[pe] = input.DN(input.DNConfig{
				StringsPerPE: nPerPE, Length: length, Ratio: ratio, Seed: benchSeed,
			}, pe, p)
		}
	case "BenchmarkFig5CommonCrawl", "BenchmarkFig5DNA":
		const total = 16000
		p, perr := strconv.Atoi(strings.TrimPrefix(parts[1], "p="))
		if perr != nil {
			return nil, 0, perr
		}
		inputs = make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			if parts[0] == "BenchmarkFig5CommonCrawl" {
				inputs[pe] = input.CommonCrawlLike(input.CCConfig{
					LinesPerPE: total / p, Seed: benchSeed,
				}, pe, p)
			} else {
				inputs[pe] = input.DNAReads(input.DNAConfig{
					ReadsPerPE: total / p, Seed: benchSeed,
				}, pe, p)
			}
		}
	default:
		return nil, 0, fmt.Errorf("unrecognized benchmark family %q", parts[0])
	}
	return inputs, algo, nil
}

// TestBenchSnapshotModelInvariance replays every Fig4/Fig5 cell of the
// committed snapshot under every wire codec, under the streaming merge
// seam, at intra-PE pool width 4, under a 32 KiB out-of-core memory
// budget AND with the trace recorder enabled, and requires the
// deterministic model metrics — model-ms and
// bytes/str, rounded at the snapshot's print precision — to match
// bit-for-bit: neither the codec layer, nor the streaming Step-3→Step-4
// seam, nor the parallel work pool, nor spilling runs to disk may be
// visible to the paper's accounting. On the Fig4 cells it
// additionally requires the compressing codecs to put strictly fewer
// bytes per string on the wire than the raw model volume (the codec
// subsystem's reason to exist), and — see
// TestBenchSnapshotStreamingOverlapNoRegression — the streaming seam to
// hide at least as much communication as the eager split-phase seam.
func TestBenchSnapshotModelInvariance(t *testing.T) {
	raw, err := os.ReadFile(benchSnapshot)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("parse %s: %v", benchSnapshot, err)
	}
	if len(snap.Results) != 54 {
		t.Fatalf("snapshot has %d Fig4/Fig5 cells, want 54", len(snap.Results))
	}
	matched := 0
	var spilled int64
	for _, row := range snap.Results {
		inputs, algo, err := snapshotInputs(row.Name)
		if err != nil {
			t.Fatalf("%s: %v", row.Name, err)
		}
		for _, mode := range []struct {
			label     string
			codec     string
			streaming bool
			cores     int
			budget    int64
			trace     bool
		}{
			{"codec=none", "none", false, 0, 0, false},
			{"codec=flate", "flate", false, 0, 0, false},
			{"codec=lcp", "lcp", false, 0, 0, false},
			{"merge=streaming", "none", true, 0, 0, false},
			{"cores=4", "none", false, 4, 0, false},
			{"mem-budget=32k", "none", false, 0, 32 << 10, false},
			// Tracing on: the recorder hooks in every layer must be invisible
			// to the paper's accounting — same bit-identity bar as the codecs.
			{"trace=on", "none", true, 0, 0, true},
		} {
			var tracePath string
			if mode.trace {
				tracePath = filepath.Join(t.TempDir(), "trace.json")
			}
			res, err := stringsort.Sort(inputs, stringsort.Config{
				Algorithm: algo, Seed: benchSeed, Codec: mode.codec,
				StreamingMerge: mode.streaming, Cores: mode.cores,
				MemBudget: mode.budget, SpillDir: t.TempDir(),
				Trace: tracePath,
			})
			if err != nil {
				t.Fatalf("%s %s: %v", row.Name, mode.label, err)
			}
			if mode.trace {
				if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
					t.Errorf("%s %s: no trace file written (%v)", row.Name, mode.label, err)
				}
			}
			if mode.budget > 0 {
				spilled += res.Stats.SpillBytesWritten
				if len(res.PEs) > 0 && res.PEs[0].RunFile != "" {
					os.RemoveAll(filepath.Dir(res.PEs[0].RunFile))
				}
			}
			st := res.Stats
			if got := benchRound(st.ModelTime * 1e3); got != row.ModelMS {
				t.Errorf("%s %s: model-ms %v, snapshot %v", row.Name, mode.label, got, row.ModelMS)
			}
			if got := benchRound(st.BytesPerString); got != row.BytesPerStr {
				t.Errorf("%s %s: bytes/str %v, snapshot %v", row.Name, mode.label, got, row.BytesPerStr)
			}
			if strings.HasPrefix(row.Name, "BenchmarkFig4") && mode.codec != "none" {
				if st.WireBytesPerString >= st.BytesPerString {
					t.Errorf("%s %s: wire bytes/str %.2f not strictly below raw %.2f",
						row.Name, mode.label, st.WireBytesPerString, st.BytesPerString)
				}
			}
		}
		if !t.Failed() {
			matched++
		}
	}
	if spilled == 0 {
		t.Errorf("the 32 KiB budget mode never wrote a spill byte: the out-of-core path did not engage")
	}
	t.Logf("%d/%d snapshot cells bit-identical under all codecs, the streaming merge, cores=4, a 32 KiB budget and tracing (%d spill bytes)", matched, len(snap.Results), spilled)
}

// TestBenchSnapshotStreamingOverlapNoRegression asserts the streaming
// seam's reason to exist on the Fig4 cells: summed over the whole figure,
// the streaming merge must hide at least as much communication under
// compute (overlap-ms) as the eager split-phase seam — the loser tree
// running during the exchange can only shrink the blocked time the
// overlap credit subtracts. Overlap is a wall-clock measurement, so the
// comparison is aggregated over all 30 cells and retried a few times
// before failing: a single pathological scheduling of one run must not
// flip the verdict.
func TestBenchSnapshotStreamingOverlapNoRegression(t *testing.T) {
	raw, err := os.ReadFile(benchSnapshot)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("parse %s: %v", benchSnapshot, err)
	}
	sums := func() (eager, streaming float64) {
		for _, row := range snap.Results {
			if !strings.HasPrefix(row.Name, "BenchmarkFig4") {
				continue
			}
			inputs, algo, err := snapshotInputs(row.Name)
			if err != nil {
				t.Fatalf("%s: %v", row.Name, err)
			}
			for _, stream := range []bool{false, true} {
				res, err := stringsort.Sort(inputs, stringsort.Config{
					Algorithm: algo, Seed: benchSeed, StreamingMerge: stream,
				})
				if err != nil {
					t.Fatalf("%s streaming=%v: %v", row.Name, stream, err)
				}
				if stream {
					streaming += res.Stats.OverlapMS
				} else {
					eager += res.Stats.OverlapMS
				}
			}
		}
		return eager, streaming
	}
	var eager, streaming float64
	for attempt := 0; attempt < 3; attempt++ {
		eager, streaming = sums()
		if streaming >= eager {
			t.Logf("Fig4 overlap-ms: streaming %.3f >= eager %.3f (attempt %d)", streaming, eager, attempt+1)
			return
		}
	}
	t.Fatalf("streaming seam hid less communication than the eager split-phase seam "+
		"on every attempt: %.3f vs %.3f overlap-ms summed over Fig4", streaming, eager)
}
