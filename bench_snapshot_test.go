// Snapshot regression: the committed BENCH_<date>.json files record the
// paper-figure metrics PR over PR. The deterministic columns — model_ms
// and bytes_per_str — must not drift unless a PR deliberately changes the
// algorithms' communication behavior, and in particular must be invariant
// under every wire codec: compression happens below the accounting
// boundary, so the paper's numbers cannot move.
package dss_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"dss/internal/input"
	"dss/stringsort"
)

// benchSnapshot is the snapshot this tree's figures are pinned against
// (written by scripts/bench.sh at the previous PR).
const benchSnapshot = "BENCH_2026-07-30.json"

type snapshotFile struct {
	Results []struct {
		Name        string  `json:"name"`
		ModelMS     float64 `json:"model_ms"`
		BytesPerStr float64 `json:"bytes_per_str"`
	} `json:"results"`
}

// benchRound rounds x exactly as the testing package prints benchmark
// metrics (and therefore exactly as the numbers entered the snapshot):
// four significant figures for small values, whole numbers from 1000 up.
func benchRound(x float64) float64 {
	var prec int
	switch y := math.Abs(x); {
	case y == 0 || y >= 999.95:
		prec = 0
	case y >= 99.995:
		prec = 1
	case y >= 9.9995:
		prec = 2
	case y >= 0.99995:
		prec = 3
	case y >= 0.099995:
		prec = 4
	case y >= 0.0099995:
		prec = 5
	case y >= 0.00099995:
		prec = 6
	default:
		prec = 7
	}
	v, _ := strconv.ParseFloat(strconv.FormatFloat(x, 'f', prec, 64), 64)
	return v
}

// snapshotInputs rebuilds the workload of one Fig4/Fig5 benchmark from its
// snapshot name, mirroring the constants in bench_test.go.
func snapshotInputs(name string) (inputs [][][]byte, algo stringsort.Algorithm, err error) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 {
		return nil, 0, fmt.Errorf("unrecognized benchmark name %q", name)
	}
	algo, err = stringsort.ParseAlgorithm(parts[2])
	if err != nil {
		return nil, 0, err
	}
	switch parts[0] {
	case "BenchmarkFig4":
		const p, nPerPE, length = 8, 1000, 100
		ratio, perr := strconv.ParseFloat(strings.TrimPrefix(parts[1], "DN="), 64)
		if perr != nil {
			return nil, 0, perr
		}
		inputs = make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			inputs[pe] = input.DN(input.DNConfig{
				StringsPerPE: nPerPE, Length: length, Ratio: ratio, Seed: benchSeed,
			}, pe, p)
		}
	case "BenchmarkFig5CommonCrawl", "BenchmarkFig5DNA":
		const total = 16000
		p, perr := strconv.Atoi(strings.TrimPrefix(parts[1], "p="))
		if perr != nil {
			return nil, 0, perr
		}
		inputs = make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			if parts[0] == "BenchmarkFig5CommonCrawl" {
				inputs[pe] = input.CommonCrawlLike(input.CCConfig{
					LinesPerPE: total / p, Seed: benchSeed,
				}, pe, p)
			} else {
				inputs[pe] = input.DNAReads(input.DNAConfig{
					ReadsPerPE: total / p, Seed: benchSeed,
				}, pe, p)
			}
		}
	default:
		return nil, 0, fmt.Errorf("unrecognized benchmark family %q", parts[0])
	}
	return inputs, algo, nil
}

// TestBenchSnapshotModelInvariance replays every Fig4/Fig5 cell of the
// committed snapshot under every wire codec and requires the deterministic
// model metrics — model-ms and bytes/str, rounded at the snapshot's print
// precision — to match bit-for-bit: the codec layer must be invisible to
// the paper's accounting. On the Fig4 cells it additionally requires the
// compressing codecs to put strictly fewer bytes per string on the wire
// than the raw model volume (the subsystem's reason to exist).
func TestBenchSnapshotModelInvariance(t *testing.T) {
	raw, err := os.ReadFile(benchSnapshot)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("parse %s: %v", benchSnapshot, err)
	}
	if len(snap.Results) != 54 {
		t.Fatalf("snapshot has %d Fig4/Fig5 cells, want 54", len(snap.Results))
	}
	matched := 0
	for _, row := range snap.Results {
		inputs, algo, err := snapshotInputs(row.Name)
		if err != nil {
			t.Fatalf("%s: %v", row.Name, err)
		}
		for _, codec := range []string{"none", "flate", "lcp"} {
			res, err := stringsort.Sort(inputs, stringsort.Config{
				Algorithm: algo, Seed: benchSeed, Codec: codec,
			})
			if err != nil {
				t.Fatalf("%s codec=%s: %v", row.Name, codec, err)
			}
			st := res.Stats
			if got := benchRound(st.ModelTime * 1e3); got != row.ModelMS {
				t.Errorf("%s codec=%s: model-ms %v, snapshot %v", row.Name, codec, got, row.ModelMS)
			}
			if got := benchRound(st.BytesPerString); got != row.BytesPerStr {
				t.Errorf("%s codec=%s: bytes/str %v, snapshot %v", row.Name, codec, got, row.BytesPerStr)
			}
			if strings.HasPrefix(row.Name, "BenchmarkFig4") && codec != "none" {
				if st.WireBytesPerString >= st.BytesPerString {
					t.Errorf("%s codec=%s: wire bytes/str %.2f not strictly below raw %.2f",
						row.Name, codec, st.WireBytesPerString, st.BytesPerString)
				}
			}
		}
		if !t.Failed() {
			matched++
		}
	}
	t.Logf("%d/%d snapshot cells bit-identical under all codecs", matched, len(snap.Results))
}
